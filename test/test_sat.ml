(* CDCL solver: unit tests plus randomized cross-checks against brute
   force. *)

let lit = Sat.Lit.make
let nlit = Sat.Lit.make_neg

let test_lit_encoding () =
  Alcotest.(check int) "var of pos" 3 (Sat.Lit.var (lit 3));
  Alcotest.(check int) "var of neg" 3 (Sat.Lit.var (nlit 3));
  Alcotest.(check bool) "pos polarity" false (Sat.Lit.is_neg (lit 3));
  Alcotest.(check bool) "neg polarity" true (Sat.Lit.is_neg (nlit 3));
  Alcotest.(check int) "neg involutive" (lit 5) (Sat.Lit.neg (Sat.Lit.neg (lit 5)));
  Alcotest.(check int) "dimacs pos" 4 (Sat.Lit.to_dimacs (lit 3));
  Alcotest.(check int) "dimacs neg" (-4) (Sat.Lit.to_dimacs (nlit 3));
  Alcotest.(check int) "dimacs roundtrip" (nlit 7) (Sat.Lit.of_dimacs (Sat.Lit.to_dimacs (nlit 7)));
  Alcotest.check_raises "of_dimacs 0" (Invalid_argument "Lit.of_dimacs: 0") (fun () ->
      ignore (Sat.Lit.of_dimacs 0))

let test_trivial_sat () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a ];
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat -> Alcotest.(check bool) "a true" true (Sat.Solver.value s (lit a))
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "still okay" true (Sat.Solver.okay s)

let test_trivial_unsat () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a ];
  Sat.Solver.add_clause s [ nlit a ];
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT");
  Alcotest.(check bool) "okay false after empty conflict" false (Sat.Solver.okay s)

let test_empty_clause () =
  let s = Sat.Solver.create () in
  Sat.Solver.add_clause s [];
  Alcotest.(check bool) "okay" false (Sat.Solver.okay s);
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_tautology_dropped () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a; nlit a ];
  Alcotest.(check int) "no clause stored" 0 (Sat.Solver.nclauses s);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_implication_chain () =
  let s = Sat.Solver.create () in
  let n = 50 in
  let v = Sat.Solver.new_vars s n in
  for i = 0 to n - 2 do
    Sat.Solver.add_clause s [ nlit (v + i); lit (v + i + 1) ]
  done;
  Sat.Solver.add_clause s [ lit v ];
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat ->
    for i = 0 to n - 1 do
      Alcotest.(check bool) (Printf.sprintf "chain %d" i) true (Sat.Solver.value s (lit (v + i)))
    done
  | _ -> Alcotest.fail "expected SAT")

let test_assumptions_flip () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ lit a; lit b ];
  (* Both polarities of [a] are satisfiable under assumptions. *)
  Alcotest.(check bool) "a=1" true (Sat.Solver.solve ~assumptions:[ lit a ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "a=0" true (Sat.Solver.solve ~assumptions:[ nlit a ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "model respects assumption" true (Sat.Solver.value s (nlit a));
  Alcotest.(check bool) "b forced" true (Sat.Solver.value s (lit b));
  (* Solver state is reusable afterwards. *)
  Alcotest.(check bool) "no assumptions" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_final_conflict_subset () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s
  and b = Sat.Solver.new_var s
  and c = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ nlit a; nlit b ];
  (match Sat.Solver.solve ~assumptions:[ lit a; lit b; lit c ] s with
  | Sat.Solver.Unsat ->
    let core = Sat.Solver.final_conflict s in
    Alcotest.(check bool) "a in core" true (List.mem (lit a) core);
    Alcotest.(check bool) "b in core" true (List.mem (lit b) core);
    Alcotest.(check bool) "c not in core" false (List.mem (lit c) core)
  | _ -> Alcotest.fail "expected UNSAT under assumptions");
  (* The clause set itself stays satisfiable. *)
  Alcotest.(check bool) "still sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_final_conflict_level0 () =
  (* The assumption fails against a unit clause: core is the assumption
     alone. *)
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let b = Sat.Solver.new_var s in
  ignore b;
  Sat.Solver.add_clause s [ nlit a ];
  (match Sat.Solver.solve ~assumptions:[ lit b; lit a ] s with
  | Sat.Solver.Unsat ->
    let core = Sat.Solver.final_conflict s in
    Alcotest.(check (list int)) "core = [a]" [ lit a ] core
  | _ -> Alcotest.fail "expected UNSAT")

let test_budget_unknown () =
  (* php(6) needs hundreds of conflicts; a budget of 5 must give Unknown. *)
  let n = 6 in
  let s = Sat.Solver.create () in
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.Solver.new_var s)) in
  for i = 0 to n do
    Sat.Solver.add_clause s (List.init n (fun j -> lit v.(i).(j)))
  done;
  for j = 0 to n - 1 do
    for i1 = 0 to n do
      for i2 = i1 + 1 to n do
        Sat.Solver.add_clause s [ nlit v.(i1).(j); nlit v.(i2).(j) ]
      done
    done
  done;
  Sat.Solver.set_budget s 5;
  Alcotest.(check bool) "unknown" true (Sat.Solver.solve s = Sat.Solver.Unknown);
  Sat.Solver.clear_budget s;
  Alcotest.(check bool) "unsat without budget" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_incremental_narrowing () =
  (* Adding clauses between solves narrows the model set monotonically. *)
  let s = Sat.Solver.create () in
  let n = 8 in
  let v = Sat.Solver.new_vars s n in
  Alcotest.(check bool) "initial sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  for i = 0 to n - 1 do
    Sat.Solver.add_clause s [ lit (v + i) ];
    Alcotest.(check bool) (Printf.sprintf "sat after %d units" i) true (Sat.Solver.solve s = Sat.Solver.Sat)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check bool) "forced true" true (Sat.Solver.value s (lit (v + i)))
  done;
  Sat.Solver.add_clause s [ nlit v ];
  Alcotest.(check bool) "now unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_xor_bank () =
  (* x_i xor x_{i+1} = c_i chains exercise long implications both ways. *)
  let s = Sat.Solver.create () in
  let n = 30 in
  let v = Sat.Solver.new_vars s n in
  let xor_clause a b rhs =
    (* a xor b = rhs *)
    if rhs then begin
      Sat.Solver.add_clause s [ lit a; lit b ];
      Sat.Solver.add_clause s [ nlit a; nlit b ]
    end
    else begin
      Sat.Solver.add_clause s [ lit a; nlit b ];
      Sat.Solver.add_clause s [ nlit a; lit b ]
    end
  in
  for i = 0 to n - 2 do
    xor_clause (v + i) (v + i + 1) (i mod 2 = 0)
  done;
  (match Sat.Solver.solve ~assumptions:[ lit v ] s with
  | Sat.Solver.Sat ->
    (* Values are fully determined by the first variable. *)
    let expected = Array.make n true in
    for i = 0 to n - 2 do
      expected.(i + 1) <- (if i mod 2 = 0 then not expected.(i) else expected.(i))
    done;
    for i = 0 to n - 1 do
      Alcotest.(check bool) (Printf.sprintf "xor chain %d" i) expected.(i)
        (Sat.Solver.value s (lit (v + i)))
    done
  | _ -> Alcotest.fail "expected SAT")

let random_cross_check =
  Test_util.qcheck ~count:300 "random CNF agrees with brute force"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (pair (int_range 3 9) (int_range 1 30)))
    (fun (seed, (nv, nc)) ->
      let rand = Random.State.make [| seed |] in
      let clauses = Test_util.random_cnf rand nv nc 3 in
      let s = Sat.Solver.create () in
      ignore (Sat.Solver.new_vars s nv);
      List.iter (Sat.Solver.add_clause s) clauses;
      let got = Sat.Solver.solve s in
      match (got, Test_util.brute_force_sat nv clauses) with
      | Sat.Solver.Sat, Some _ ->
        (* The model must satisfy every clause. *)
        List.for_all (fun cls -> List.exists (fun l -> Sat.Solver.value s l) cls) clauses
      | Sat.Solver.Unsat, None -> true
      | _ -> false)

let random_core_check =
  Test_util.qcheck ~count:200 "assumption core is inconsistent and sound"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 3 8))
    (fun (seed, nv) ->
      let rand = Random.State.make [| seed |] in
      let clauses = Test_util.random_cnf rand nv (2 * nv) 3 in
      let s = Sat.Solver.create () in
      ignore (Sat.Solver.new_vars s nv);
      List.iter (Sat.Solver.add_clause s) clauses;
      let assumptions = List.init nv (fun v -> Sat.Lit.of_var v (Random.State.bool rand)) in
      match Sat.Solver.solve ~assumptions s with
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true
      | Sat.Solver.Unsat ->
        let core = Sat.Solver.final_conflict s in
        (* Core literals are assumptions... *)
        List.for_all (fun l -> List.mem l assumptions) core
        &&
        (* ... and the formula plus core is really unsatisfiable. *)
        Test_util.brute_force_sat nv (clauses @ List.map (fun l -> [ l ]) core) = None)

let dimacs_roundtrip =
  Test_util.qcheck ~count:100 "dimacs parse/print roundtrip"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, nv) ->
      let rand = Random.State.make [| seed |] in
      let clauses = Test_util.random_cnf rand nv nv 3 in
      let cnf = { Sat.Dimacs.num_vars = nv; clauses } in
      let cnf' = Sat.Dimacs.parse_string (Sat.Dimacs.to_string cnf) in
      cnf'.Sat.Dimacs.clauses = clauses && cnf'.Sat.Dimacs.num_vars >= nv)

let test_group_activation () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s in
  let g = Sat.Solver.new_group s in
  let gl = Sat.Solver.group_lit g in
  Sat.Solver.add_clause_in_group s g [ lit a ];
  Sat.Solver.add_clause_in_group s g [ nlit a; lit b ];
  (* Inactive group does not constrain. *)
  (match Sat.Solver.solve ~assumptions:[ nlit a; nlit b ] s with
  | Sat.Solver.Sat -> ()
  | _ -> Alcotest.fail "inactive group must not constrain");
  (* Active group forces a and b. *)
  (match Sat.Solver.solve ~assumptions:[ gl ] s with
  | Sat.Solver.Sat ->
    Alcotest.(check bool) "a forced" true (Sat.Solver.value s (lit a));
    Alcotest.(check bool) "b forced" true (Sat.Solver.value s (lit b))
  | _ -> Alcotest.fail "expected SAT under activation");
  Alcotest.(check bool) "group conflicts"
    true
    (Sat.Solver.solve ~assumptions:[ gl; nlit b ] s = Sat.Solver.Unsat)

let test_group_retract () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let g = Sat.Solver.new_group s in
  let gl = Sat.Solver.group_lit g in
  Sat.Solver.add_clause_in_group s g [ lit a ];
  Alcotest.(check bool) "active" true (Sat.Solver.solve ~assumptions:[ gl; nlit a ] s = Sat.Solver.Unsat);
  Sat.Solver.retract_group s g;
  (* The retracted group's clauses are gone for good... *)
  Alcotest.(check bool) "retracted" true (Sat.Solver.solve ~assumptions:[ nlit a ] s = Sat.Solver.Sat);
  (* ... its activation literal is now falsified... *)
  Alcotest.(check bool) "activation dead" true (Sat.Solver.solve ~assumptions:[ gl ] s = Sat.Solver.Unsat);
  (* ... double retraction and adding into a dead group are harmless. *)
  Sat.Solver.retract_group s g;
  Sat.Solver.add_clause_in_group s g [ lit a ];
  Alcotest.(check bool) "add after retract inert" true
    (Sat.Solver.solve ~assumptions:[ nlit a ] s = Sat.Solver.Sat)

let test_group_independence () =
  (* Two groups activate and retract independently over shared variables. *)
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  let g1 = Sat.Solver.new_group s and g2 = Sat.Solver.new_group s in
  Sat.Solver.add_clause_in_group s g1 [ lit a ];
  Sat.Solver.add_clause_in_group s g2 [ nlit a ];
  let l1 = Sat.Solver.group_lit g1 and l2 = Sat.Solver.group_lit g2 in
  Alcotest.(check bool) "both active clash" true
    (Sat.Solver.solve ~assumptions:[ l1; l2 ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "g1 alone" true (Sat.Solver.solve ~assumptions:[ l1 ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "a true under g1" true (Sat.Solver.value s (lit a));
  Sat.Solver.retract_group s g1;
  Alcotest.(check bool) "g2 after g1 retracted" true
    (Sat.Solver.solve ~assumptions:[ l2 ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "a false under g2" true (Sat.Solver.value s (nlit a))

let test_group_simplify_freeze () =
  (* With the preprocessor enabled, the activation variable has no positive
     occurrence; unfrozen it would be eliminated with zero resolvents,
     silently deleting the whole group.  [Simplify.new_group] must freeze
     it. *)
  let s = Sat.Solver.create () in
  let simp = Sat.Simplify.create ~enabled:true s in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s in
  Sat.Simplify.freeze simp (lit a);
  Sat.Simplify.freeze simp (lit b);
  let g = Sat.Simplify.new_group simp in
  let gl = Sat.Solver.group_lit g in
  Sat.Simplify.add_clause_in_group simp g [ lit a ];
  Sat.Simplify.add_clause simp [ nlit a; lit b ];
  Sat.Simplify.simplify simp;
  Alcotest.(check bool) "activation var survives preprocessing" false
    (Sat.Simplify.is_eliminated simp (Sat.Lit.var gl));
  Alcotest.(check bool) "active group propagates" true
    (Sat.Simplify.solve ~assumptions:[ gl; nlit b ] simp = Sat.Solver.Unsat);
  Alcotest.(check bool) "inactive group free" true
    (Sat.Simplify.solve ~assumptions:[ nlit a; nlit b ] simp = Sat.Solver.Sat);
  Sat.Simplify.retract_group simp g;
  Sat.Simplify.simplify simp;
  Alcotest.(check bool) "retract through simplifier" true
    (Sat.Simplify.solve ~assumptions:[ nlit a; nlit b ] simp = Sat.Solver.Sat);
  Alcotest.(check bool) "activation dead after retract" true
    (Sat.Simplify.solve ~assumptions:[ gl ] simp = Sat.Solver.Unsat)

let test_inprocess_group_safety () =
  (* The SCC pass must never pick a frozen activation variable as a
     substitution target — the retraction unit ~a has to keep its meaning —
     while substituting other variables TOWARDS it is fine.  Build an
     equivalence a <-> x between the activation variable and a plain one:
     the group clause [x] is stored as (~a | x), and (a | ~x) closes the
     cycle. *)
  let s = Sat.Solver.create () in
  let simp = Sat.Simplify.create ~enabled:false s in
  let x = Sat.Solver.new_var s and y = Sat.Solver.new_var s in
  let g = Sat.Simplify.new_group simp in
  let gl = Sat.Solver.group_lit g in
  Sat.Simplify.add_clause_in_group simp g [ lit x ];
  Sat.Simplify.add_clause simp [ gl; nlit x ];
  Sat.Simplify.add_clause simp [ lit x; lit y ];
  Alcotest.(check bool) "active group forces x" true
    (Sat.Simplify.solve ~assumptions:[ gl ] simp = Sat.Solver.Sat
    && Sat.Simplify.value simp (lit x));
  Sat.Simplify.inprocess simp;
  let st = Sat.Simplify.inprocess_stats simp in
  Alcotest.(check bool) "scc substituted the plain variable" true
    (st.Sat.Simplify.substituted_vars > 0);
  Alcotest.(check bool) "activation variable never a substitution target" false
    (Sat.Simplify.is_substituted simp (Sat.Lit.var gl));
  (* the substituted database still answers through the group *)
  Alcotest.(check bool) "active group still forces x" true
    (Sat.Simplify.solve ~assumptions:[ gl ] simp = Sat.Solver.Sat
    && Sat.Simplify.value simp (lit x));
  (* retraction after inprocessing: the unit ~a kills the group clause and,
     through the equivalence, x itself; assuming ~x (which freezes and so
     reintroduces the substituted variable) must now be satisfiable *)
  Sat.Simplify.retract_group simp g;
  Alcotest.(check bool) "retract after inprocess works" true
    (Sat.Simplify.solve ~assumptions:[ nlit x ] simp = Sat.Solver.Sat
    && Sat.Simplify.value simp (lit y));
  let st = Sat.Simplify.inprocess_stats simp in
  Alcotest.(check bool) "substituted variable reintroduced on freeze" true
    (st.Sat.Simplify.resubstituted_vars > 0)

let test_inprocess_retract_detaches () =
  (* Retracting a group after an inprocessing round must still detach every
     clause of the group, and the next round reclaims them. *)
  let s = Sat.Solver.create () in
  let simp = Sat.Simplify.create ~enabled:false s in
  let x = Sat.Solver.new_var s and y = Sat.Solver.new_var s in
  let g = Sat.Simplify.new_group simp in
  Sat.Simplify.add_clause_in_group simp g [ lit x ];
  Sat.Simplify.add_clause_in_group simp g [ lit y ];
  Sat.Simplify.add_clause simp [ lit x; lit y ];
  let gl = Sat.Solver.group_lit g in
  Alcotest.(check bool) "group active" true
    (Sat.Simplify.solve ~assumptions:[ gl ] simp = Sat.Solver.Sat);
  Sat.Simplify.inprocess simp;
  Sat.Simplify.retract_group simp g;
  Alcotest.(check bool) "group clauses detached" true
    (Sat.Simplify.solve ~assumptions:[ nlit x ] simp = Sat.Solver.Sat
    && Sat.Simplify.value simp (lit y));
  let before = (Sat.Simplify.inprocess_stats simp).Sat.Simplify.gc_clauses in
  Sat.Simplify.inprocess simp;
  let after = (Sat.Simplify.inprocess_stats simp).Sat.Simplify.gc_clauses in
  Alcotest.(check bool) "retracted group reclaimed by gc" true (after > before)

let test_skipped_passes_counter () =
  (* A solve with nothing new pending must not silently re-run (or silently
     skip) the preprocessing pipeline: the skip is counted. *)
  let s = Sat.Solver.create () in
  let simp = Sat.Simplify.create ~enabled:true s in
  ignore (Sat.Solver.new_vars s 3);
  List.iter (Sat.Simplify.add_clause simp) [ [ lit 0; lit 1 ]; [ nlit 1; lit 2 ] ];
  ignore (Sat.Simplify.solve simp);
  Alcotest.(check int) "first solve runs the pipeline" 0
    (Sat.Simplify.stats simp).Sat.Simplify.skipped_passes;
  ignore (Sat.Simplify.solve simp);
  Alcotest.(check int) "second solve skips and counts it" 1
    (Sat.Simplify.stats simp).Sat.Simplify.skipped_passes

let test_dimacs_parse () =
  let cnf = Sat.Dimacs.parse_string "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  Alcotest.(check int) "vars" 3 cnf.Sat.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Sat.Dimacs.clauses);
  let s = Sat.Solver.create () in
  Sat.Dimacs.load_into s cnf;
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "assumptions flip" `Quick test_assumptions_flip;
          Alcotest.test_case "final conflict subset" `Quick test_final_conflict_subset;
          Alcotest.test_case "final conflict at level 0" `Quick test_final_conflict_level0;
          Alcotest.test_case "budget gives unknown" `Quick test_budget_unknown;
          Alcotest.test_case "incremental narrowing" `Quick test_incremental_narrowing;
          Alcotest.test_case "xor chains" `Quick test_xor_bank;
          Alcotest.test_case "group activation" `Quick test_group_activation;
          Alcotest.test_case "group retraction" `Quick test_group_retract;
          Alcotest.test_case "group independence" `Quick test_group_independence;
          Alcotest.test_case "group freeze under simplify" `Quick test_group_simplify_freeze;
          Alcotest.test_case "inprocess group safety" `Quick test_inprocess_group_safety;
          Alcotest.test_case "inprocess then retract detaches" `Quick
            test_inprocess_retract_detaches;
          Alcotest.test_case "skipped passes counted" `Quick test_skipped_passes_counter;
          Alcotest.test_case "dimacs parse" `Quick test_dimacs_parse;
        ] );
      ("property", [ random_cross_check; random_core_check; dimacs_roundtrip ]);
    ]
