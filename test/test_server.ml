(* The ECO service: JSON codec, frame codec, request validation, the
   synchronous solve path (caching, guard, deadlines, draining, the
   internal-error path), and a live socket end-to-end replay.

   Every documented frame type of PROTOCOL.md is exercised here: solve,
   batch, stats and shutdown on the success side; bad_frame, bad_json,
   bad_version, unknown_op, bad_request, deadline_expired, shutting_down
   and internal on the error side. *)

module J = Server.Jsonx
module P = Server.Protocol
module R = Server.Request

let payload ?id ?deadline_ms req = J.to_string (R.to_json ?id ?deadline_ms req)

let unit_spec ?(options = R.default_options) name =
  { R.source = R.Unit_name name; options }

let parse_response s = J.of_string s

let error_code resp =
  match Server.Client.error_of resp with
  | Some (code, _) -> code
  | None -> Alcotest.fail ("expected an error response, got " ^ J.to_string resp)

let result_of resp =
  match J.member "result" resp with
  | Some r -> r
  | None -> Alcotest.fail ("response without result: " ^ J.to_string resp)

let cv name = Telemetry.counter_value name

(* {2 Jsonx} *)

let test_jsonx_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Str "x"; J.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "print/parse round-trip" true (J.of_string (J.to_string v) = v)

let test_jsonx_unicode () =
  (match J.of_string {|"\u0041\u00e9\u20ac\ud83d\ude00"|} with
  | J.Str s -> Alcotest.(check string) "escapes decode to UTF-8" "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string");
  Alcotest.check_raises "lone high surrogate" (J.Parse_error "lone high surrogate at byte 7")
    (fun () -> ignore (J.of_string {|"\ud800"|}))

let test_jsonx_errors () =
  let bad s = match J.of_string s with
    | exception J.Parse_error _ -> ()
    | v -> Alcotest.fail (Printf.sprintf "%S parsed as %s" s (J.to_string v))
  in
  bad "";
  bad "hello";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "\"\\q\"";
  bad "{} trailing";
  bad "\"raw\x01control\""

(* {2 Framing} *)

let feed_all d s =
  P.feed d (Bytes.of_string s) (String.length s)

let test_frame_roundtrip_chunked () =
  let d = P.decoder () in
  let frames = [ "{}"; String.make 1000 'x'; "{\"op\":\"stats\"}" ] in
  let stream = String.concat "" (List.map P.encode_frame frames) in
  (* Deliver in 7-byte chunks: the decoder must reassemble across both
     header and payload boundaries. *)
  let n = String.length stream in
  let rec drip i = if i < n then begin
      feed_all d (String.sub stream i (min 7 (n - i)));
      drip (i + 7)
    end
  in
  drip 0;
  List.iter
    (fun expect ->
      match P.next_frame d with
      | `Frame got -> Alcotest.(check string) "payload" expect got
      | _ -> Alcotest.fail "expected a frame")
    frames;
  Alcotest.(check bool) "drained" true (P.next_frame d = `Await)

let test_frame_truncated () =
  let d = P.decoder () in
  let enc = P.encode_frame "{\"op\":\"stats\"}" in
  feed_all d (String.sub enc 0 (String.length enc - 3));
  Alcotest.(check bool) "incomplete frame awaits" true (P.next_frame d = `Await)

let test_frame_oversized () =
  let d = P.decoder ~max_frame:64 () in
  feed_all d (P.encode_frame (String.make 65 'y'));
  (match P.next_frame d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "oversized length must be a framing error");
  (* The decoder is permanently dead afterwards. *)
  feed_all d (P.encode_frame "{}");
  match P.next_frame d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "decoder must stay dead"

let test_frame_garbage_length () =
  let d = P.decoder () in
  (* 0xFFFFFFFF length: garbage bytes where a header is expected. *)
  feed_all d "\xff\xff\xff\xffjunk";
  (match P.next_frame d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "garbage length must be a framing error");
  let d0 = P.decoder () in
  feed_all d0 "\x00\x00\x00\x00";
  match P.next_frame d0 with
  | `Error _ -> ()
  | _ -> Alcotest.fail "zero length must be a framing error"

(* {2 Request parsing} *)

let code_of_parse s =
  match R.parse s with
  | Ok _ -> Alcotest.fail ("parsed: " ^ s)
  | Error e -> (P.code_string e.R.code, e.R.err_id)

let test_parse_errors () =
  let check s code id =
    let got_code, got_id = code_of_parse s in
    Alcotest.(check string) ("code of " ^ s) code got_code;
    Alcotest.(check bool) ("id of " ^ s) true (got_id = id)
  in
  check "not json at all" "bad_json" J.Null;
  check "{\"op\":\"solve\"}" "bad_version" J.Null;
  check "{\"v\":99,\"id\":7,\"op\":\"solve\"}" "bad_version" (J.Int 7);
  check "{\"v\":1,\"id\":7}" "unknown_op" (J.Int 7);
  check "{\"v\":1,\"id\":\"a\",\"op\":\"frobnicate\"}" "unknown_op" (J.Str "a");
  check "{\"v\":1,\"id\":7,\"op\":\"solve\"}" "bad_request" (J.Int 7);
  check "{\"v\":1,\"op\":\"solve\",\"unit\":\"no_such_unit\",\"method\":\"sorcery\"}"
    "bad_request" J.Null;
  check "{\"v\":1,\"op\":\"solve\",\"unit\":\"unit5\",\"deadline_ms\":-3}" "bad_request" J.Null

let test_parse_roundtrip () =
  let spec = unit_spec ~options:{ R.default_options with R.certify = true } "unit5" in
  let s = payload ~id:(J.Int 9) ~deadline_ms:5000 (R.Solve spec) in
  match R.parse s with
  | Error e -> Alcotest.fail e.R.msg
  | Ok env ->
    Alcotest.(check bool) "id" true (env.R.id = J.Int 9);
    Alcotest.(check (option int)) "deadline" (Some 5000) env.R.deadline_ms;
    (match env.R.request with
    | R.Solve got ->
      Alcotest.(check bool) "source" true (got.R.source = R.Unit_name "unit5");
      Alcotest.(check bool) "options survive" true (got.R.options.R.certify)
    | _ -> Alcotest.fail "op");
    (* Stats and shutdown round-trip too. *)
    (match R.parse (payload R.Stats) with
    | Ok { R.request = R.Stats; _ } -> ()
    | _ -> Alcotest.fail "stats");
    match R.parse (payload R.Shutdown) with
    | Ok { R.request = R.Shutdown; _ } -> ()
    | _ -> Alcotest.fail "shutdown"

(* {2 The synchronous solve path} *)

let sync_config =
  { Server.default_config with Server.jobs = 1; cone_cache = false; guard_period = 0 }

let test_solve_and_cache () =
  let t = Server.create sync_config in
  let s = payload ~id:(J.Int 1) (R.Solve (unit_spec "unit5")) in
  let r1 = parse_response (Server.handle_payload t s) in
  Alcotest.(check bool) "first solve ok" true (Server.Client.is_ok r1);
  Alcotest.(check bool) "first solve not cached" true
    (J.member "cached" r1 = Some (J.Bool false));
  let r2 = parse_response (Server.handle_payload t s) in
  Alcotest.(check bool) "replay cached" true (J.member "cached" r2 = Some (J.Bool true));
  Alcotest.(check string) "replayed result identical" (J.to_string (result_of r1))
    (J.to_string (result_of r2));
  (* no_cache opts a request out of the cache. *)
  let s3 =
    payload ~id:(J.Int 2)
      (R.Solve (unit_spec ~options:{ R.default_options with R.no_cache = true } "unit5"))
  in
  let r3 = parse_response (Server.handle_payload t s3) in
  Alcotest.(check bool) "no_cache solve ok" true (Server.Client.is_ok r3);
  Alcotest.(check bool) "no_cache never reports cached" true (J.member "cached" r3 = Some (J.Bool false));
  Alcotest.(check string) "no_cache recomputes the same result"
    (J.to_string (result_of r1)) (J.to_string (result_of r3))

let test_bad_request_error () =
  let t = Server.create sync_config in
  let r = parse_response (Server.handle_payload t "{\"v\":1,\"op\":\"solve\",\"unit\":\"nope\"}") in
  Alcotest.(check string) "unknown unit" "bad_request" (error_code r);
  (* The same server keeps answering after a bad request. *)
  let ok = parse_response (Server.handle_payload t (payload (R.Solve (unit_spec "unit5")))) in
  Alcotest.(check bool) "still serving" true (Server.Client.is_ok ok)

let test_deadline_expired () =
  let t = Server.create sync_config in
  let deadline = Deadline.after 0.001 in
  Unix.sleepf 0.01;
  let env = { R.id = J.Int 5; deadline_ms = Some 1; request = R.Solve (unit_spec "unit5") } in
  let before = cv "server.deadline_expired" in
  let r = parse_response (Server.process t ~deadline env) in
  Alcotest.(check string) "expired before start" "deadline_expired" (error_code r);
  Alcotest.(check bool) "id echoed" true (J.member "id" r = Some (J.Int 5));
  Alcotest.(check int) "counter booked" (before + 1) (cv "server.deadline_expired")

let test_internal_error_isolated () =
  let t = Server.create sync_config in
  Server.For_tests.fail_next_job t;
  let s = payload (R.Solve (unit_spec "unit7")) in
  let r = parse_response (Server.handle_payload t s) in
  Alcotest.(check string) "injected failure becomes internal" "internal" (error_code r);
  let r2 = parse_response (Server.handle_payload t s) in
  Alcotest.(check bool) "worker survived" true (Server.Client.is_ok r2)

let test_shutting_down () =
  let t = Server.create sync_config in
  let r = parse_response (Server.handle_payload t (payload R.Shutdown)) in
  Alcotest.(check bool) "shutdown acknowledged" true
    (J.member "stopping" (result_of r) = Some (J.Bool true));
  Alcotest.(check bool) "draining" true (Server.draining t);
  let r2 = parse_response (Server.handle_payload t (payload (R.Solve (unit_spec "unit5")))) in
  Alcotest.(check string) "solve refused while draining" "shutting_down" (error_code r2);
  (* Stats stays available during the drain. *)
  let r3 = parse_response (Server.handle_payload t (payload R.Stats)) in
  Alcotest.(check bool) "stats still answered" true (Server.Client.is_ok r3)

let test_stats_shape () =
  let t = Server.create sync_config in
  ignore (Server.handle_payload t (payload (R.Solve (unit_spec "unit5"))));
  let r = parse_response (Server.handle_payload t (payload R.Stats)) in
  let result = result_of r in
  Alcotest.(check bool) "not draining" true (J.member "draining" result = Some (J.Bool false));
  (match Option.bind (J.member "cache" result) (J.member "entries") with
  | Some (J.Int n) -> Alcotest.(check int) "one cached outcome" 1 n
  | _ -> Alcotest.fail "cache.entries missing");
  match J.member "counters" result with
  | Some (J.Obj kvs) ->
    Alcotest.(check bool) "server.solves present" true
      (List.exists (fun (k, v) -> k = "server.solves" && (match v with J.Int n -> n >= 1 | _ -> false)) kvs)
  | _ -> Alcotest.fail "counters missing"

let test_guard_catches_poisoned_entry () =
  let t = Server.create { sync_config with Server.guard_period = 1 } in
  let spec = unit_spec "unit5" in
  let s = payload (R.Solve spec) in
  let r1 = parse_response (Server.handle_payload t s) in
  let genuine = J.to_string (result_of r1) in
  (* Poison the cached entry behind the server's back. *)
  let inst =
    match R.resolve spec.R.source with Ok i -> i | Error e -> Alcotest.fail e
  in
  let key = Server.solve_fingerprint t spec inst in
  let bogus = "{\"name\":\"unit5\",\"status\":\"bogus\"}" in
  Cache.add (Server.outcome_cache t) key ~bytes:(String.length bogus) bogus;
  let failed_before = cv "cache.guard_failed" in
  (* guard_period = 1: the very next hit is sampled, re-solved with
     certification, and the mismatch detected. *)
  let r2 = parse_response (Server.handle_payload t s) in
  Alcotest.(check int) "guard failure booked" (failed_before + 1) (cv "cache.guard_failed");
  Alcotest.(check string) "fresh result served, not the poisoned one" genuine
    (J.to_string (result_of r2));
  Alcotest.(check bool) "guarded response is not marked cached" true
    (J.member "cached" r2 = Some (J.Bool false));
  (* The overwrite healed the entry: the next hit compares clean. *)
  let r3 = parse_response (Server.handle_payload t s) in
  Alcotest.(check int) "no further guard failures" (failed_before + 1) (cv "cache.guard_failed");
  Alcotest.(check string) "healed entry replays the genuine result" genuine
    (J.to_string (result_of r3))

(* {2 Live socket end-to-end} *)

let connect_retry address =
  let rec go n =
    try Server.Client.connect address
    with Unix.Unix_error _ when n > 0 ->
      Unix.sleepf 0.02;
      go (n - 1)
  in
  go 250

let test_e2e_socket () =
  let path = Filename.temp_file "eco-test-server" ".sock" in
  Sys.remove path;
  let address = P.Unix_socket path in
  let t = Server.create { Server.default_config with Server.jobs = 2 } in
  let server = Domain.spawn (fun () -> Server.serve t address) in
  let joined = ref false in
  let finally () =
    if not !joined then begin
      Server.stop t;
      Domain.join server
    end
  in
  Fun.protect ~finally @@ fun () ->
  let c = connect_retry address in
  let batch = R.Batch [ unit_spec "unit5"; unit_spec "unit7" ] in
  let rows resp =
    match Option.bind (J.member "result" resp) (J.member "rows") with
    | Some (J.List rows) -> rows
    | _ -> Alcotest.fail "batch response without rows"
  in
  let hits_before = cv "cache.hits" in
  (* Cold pass. *)
  let r1 = Server.Client.request c batch in
  Alcotest.(check bool) "cold batch ok" true (Server.Client.is_ok r1);
  let rows1 = rows r1 in
  Alcotest.(check int) "two rows" 2 (List.length rows1);
  List.iter
    (fun row ->
      Alcotest.(check bool) "cold rows not cached" true (J.member "cached" row = Some (J.Bool false)))
    rows1;
  (* Warm replay: every row served from the cache, byte-identical. *)
  let r2 = Server.Client.request c batch in
  let rows2 = rows r2 in
  List.iter2
    (fun row1 row2 ->
      Alcotest.(check bool) "warm rows cached" true (J.member "cached" row2 = Some (J.Bool true));
      Alcotest.(check string) "warm row identical"
        (J.to_string (J.member "row" row1 |> Option.get))
        (J.to_string (J.member "row" row2 |> Option.get)))
    rows1 rows2;
  Alcotest.(check bool) "cache hits booked" true (cv "cache.hits" >= hits_before + 2);
  (* Solo solve on a second connection hits the same cache. *)
  let c2 = connect_retry address in
  let solo = Server.Client.request c2 (R.Solve (unit_spec "unit5")) in
  Alcotest.(check bool) "cross-connection hit" true
    (J.member "cached" solo = Some (J.Bool true));
  Server.Client.close c2;
  (* A malformed payload is answered in-line and the connection stays up. *)
  let bad = parse_response (Server.Client.request_raw c "this is not json") in
  Alcotest.(check string) "bad_json answered" "bad_json" (error_code bad);
  let still = Server.Client.request c R.Stats in
  Alcotest.(check bool) "connection survived bad_json" true (Server.Client.is_ok still);
  (match Option.bind (J.member "result" still) (J.member "counters") with
  | Some (J.Obj kvs) ->
    (match List.assoc_opt "cache.hits" kvs with
    | Some (J.Int n) -> Alcotest.(check bool) "stats reports the hits" true (n >= 3)
    | _ -> Alcotest.fail "cache.hits missing from stats")
  | _ -> Alcotest.fail "counters missing from stats");
  Server.Client.close c;
  (* A framing violation gets one bad_frame answer, then the connection
     is closed by the server. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let junk = "\xff\xff\xff\xffgarbage" in
  ignore (Unix.write_substring fd junk 0 (String.length junk));
  (match P.read_frame fd with
  | Some reply ->
    Alcotest.(check string) "bad_frame answered" "bad_frame" (error_code (parse_response reply))
  | None -> Alcotest.fail "expected a bad_frame response");
  (match P.read_frame fd with
  | None -> ()
  | Some _ -> Alcotest.fail "server must close after a framing violation");
  Unix.close fd;
  (* Graceful shutdown over the wire: response flushed, loop exits,
     socket file removed. *)
  let c3 = connect_retry address in
  let bye = Server.Client.request c3 R.Shutdown in
  Alcotest.(check bool) "shutdown acknowledged" true
    (J.member "stopping" (result_of bye) = Some (J.Bool true));
  Server.Client.close c3;
  Domain.join server;
  joined := true;
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path)

let () =
  Alcotest.run "server"
    [
      ( "jsonx",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode;
          Alcotest.test_case "parse errors" `Quick test_jsonx_errors;
        ] );
      ( "framing",
        [
          Alcotest.test_case "chunked round-trip" `Quick test_frame_roundtrip_chunked;
          Alcotest.test_case "truncated frame awaits" `Quick test_frame_truncated;
          Alcotest.test_case "oversized frame kills decoder" `Quick test_frame_oversized;
          Alcotest.test_case "garbage and zero lengths" `Quick test_frame_garbage_length;
        ] );
      ( "requests",
        [
          Alcotest.test_case "error taxonomy" `Quick test_parse_errors;
          Alcotest.test_case "wire round-trip" `Quick test_parse_roundtrip;
        ] );
      ( "process",
        [
          Alcotest.test_case "solve, cache, no_cache" `Quick test_solve_and_cache;
          Alcotest.test_case "bad_request keeps serving" `Quick test_bad_request_error;
          Alcotest.test_case "deadline_expired" `Quick test_deadline_expired;
          Alcotest.test_case "internal error isolated" `Quick test_internal_error_isolated;
          Alcotest.test_case "shutdown drains" `Quick test_shutting_down;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
          Alcotest.test_case "guard catches poisoned entry" `Quick test_guard_catches_poisoned_entry;
        ] );
      ("e2e", [ Alcotest.test_case "socket round-trip" `Quick test_e2e_socket ]);
    ]
