(* Patch resynthesis: truth tables, SAT-exact synthesis, the memo table,
   DAG-aware rewriting, and the Patch.improve commit discipline. *)

let tt = Alcotest.testable Synth.Tt.pp Synth.Tt.equal

(* {2 Truth tables} *)

let test_tt_basics () =
  let x0 = Synth.Tt.var 3 0 and x1 = Synth.Tt.var 3 1 in
  Alcotest.(check bool) "projections differ" false (Synth.Tt.equal x0 x1);
  Alcotest.check tt "of_fun matches var"
    (Synth.Tt.of_fun 3 (fun bits -> bits.(1)))
    x1;
  Alcotest.(check (option (pair int bool))) "as_var" (Some (1, true)) (Synth.Tt.as_var x1);
  Alcotest.(check (list int)) "support" [ 1 ] (Synth.Tt.support x1);
  Alcotest.(check (option bool)) "const" (Some false)
    (Synth.Tt.is_const (Synth.Tt.const 4 false))

let test_tt_of_aig_of_sop () =
  (* MAJ3 three ways: of_fun, of_sop, of_aig — all three must agree. *)
  let maj bits = (bits.(0) && bits.(1)) || (bits.(1) && bits.(2)) || (bits.(0) && bits.(2)) in
  let by_fun = Synth.Tt.of_fun 3 maj in
  let sop =
    Twolevel.Sop.create 3
      [
        Twolevel.Cube.of_literals 3 [ (0, true); (1, true) ];
        Twolevel.Cube.of_literals 3 [ (1, true); (2, true) ];
        Twolevel.Cube.of_literals 3 [ (0, true); (2, true) ];
      ]
  in
  Alcotest.check tt "of_sop" by_fun (Synth.Tt.of_sop sop);
  let m = Aig.create () in
  let a = Aig.add_input m and b = Aig.add_input m and c = Aig.add_input m in
  let out = Aig.or_list m [ Aig.and_ m a b; Aig.and_ m b c; Aig.and_ m a c ] in
  Alcotest.check tt "of_aig" by_fun (Synth.Tt.of_aig m out)

(* {2 Exact synthesis} *)

let solution_tt (s : Synth.Exact.solution) = Synth.Tt.of_aig s.Synth.Exact.aig (Aig.output s.Synth.Exact.aig 0)

let exact_exn name t =
  match Synth.Exact.synthesize t with
  | Some s ->
    Alcotest.check tt (name ^ " function") t (solution_tt s);
    s
  | None -> Alcotest.failf "%s: exact synthesis found nothing" name

let test_exact_known_sizes () =
  (* Trivia first: constants and projections need no gates at all. *)
  let s = exact_exn "const" (Synth.Tt.const 2 true) in
  Alcotest.(check int) "const gates" 0 s.Synth.Exact.gates;
  let s = exact_exn "var" (Synth.Tt.var 4 2) in
  Alcotest.(check int) "var gates" 0 s.Synth.Exact.gates;
  (* Known optima over AIGs: AND 1; XOR 3 (depth 2); MUX 3; MAJ3 4. *)
  let s = exact_exn "and2" (Synth.Tt.of_fun 2 (fun b -> b.(0) && b.(1))) in
  Alcotest.(check int) "and2 gates" 1 s.Synth.Exact.gates;
  let s = exact_exn "xor2" (Synth.Tt.of_fun 2 (fun b -> b.(0) <> b.(1))) in
  Alcotest.(check int) "xor2 gates" 3 s.Synth.Exact.gates;
  Alcotest.(check int) "xor2 depth" 2 s.Synth.Exact.depth;
  let s = exact_exn "mux" (Synth.Tt.of_fun 3 (fun b -> if b.(0) then b.(1) else b.(2))) in
  Alcotest.(check int) "mux gates" 3 s.Synth.Exact.gates;
  let s =
    exact_exn "maj3"
      (Synth.Tt.of_fun 3 (fun b ->
           (b.(0) && b.(1)) || (b.(1) && b.(2)) || (b.(0) && b.(2))))
  in
  Alcotest.(check int) "maj3 gates" 4 s.Synth.Exact.gates

let test_exact_depth_bound () =
  (* XOR needs two levels of ANDs; a depth bound of 1 makes it
     unrealisable at any gate count, and the engine must say so rather
     than return a violating circuit. *)
  let xor = Synth.Tt.of_fun 2 (fun b -> b.(0) <> b.(1)) in
  Alcotest.(check bool) "xor2 at depth 1 is unsat" true
    (Synth.Exact.synthesize ~depth_bound:1 xor = None);
  match Synth.Exact.synthesize ~depth_bound:2 xor with
  | Some s ->
    Alcotest.(check bool) "depth bound honoured" true (s.Synth.Exact.depth <= 2);
    Alcotest.check tt "function" xor (solution_tt s)
  | None -> Alcotest.fail "xor2 at depth 2 must be realisable"

let test_exact_budget_exhaustion () =
  (* A parity of 5 variables needs 12 ANDs — far beyond max_gates 3 — so
     the search must fall back with None, never a wrong circuit. *)
  let parity = Synth.Tt.of_fun 5 (fun b -> Array.fold_left (fun a x -> a <> x) false b) in
  Alcotest.(check bool) "hopeless bound yields None" true
    (Synth.Exact.synthesize ~max_gates:3 parity = None)

(* The mockturtle "table 2" 5-input benchmarks (hex as in kitty): exact
   synthesis within budget must never be beaten by algebraic factoring,
   and its result must simulate back to the table. *)
let test_exact_vs_factoring_mockturtle () =
  List.iter
    (fun hex ->
      let bits = Int64.of_string ("0x" ^ hex) in
      let t = Synth.Tt.make 5 bits in
      (* Factoring route: tabulate → cover → factored expression → AIG. *)
      let cubes =
        List.filter_map
          (fun row ->
            if Synth.Tt.eval t row then
              Some
                (Twolevel.Cube.of_literals 5
                   (List.init 5 (fun i -> (i, (row lsr i) land 1 = 1))))
            else None)
          (List.init 32 Fun.id)
      in
      let sop = Twolevel.Sop.scc_minimize (Twolevel.Sop.create 5 cubes) in
      let fm, fout = Twolevel.Factor.synthesize sop in
      let factored_gates = Aig.count_cone_ands fm [ fout ] in
      match Synth.Exact.synthesize ~max_gates:(max 1 factored_gates) t with
      | Some s ->
        Alcotest.check tt (hex ^ " function") t (solution_tt s);
        Alcotest.(check bool)
          (hex ^ " exact <= factoring")
          true
          (s.Synth.Exact.gates <= factored_gates)
      | None ->
        (* max_gates = factored gate count, so "nothing found" can only
           mean budget exhaustion — acceptable, but flag absurd cases. *)
        Alcotest.(check bool) (hex ^ " fallback plausible") true (factored_gates > 6))
    [ "88888888"; "80808080"; "80008000"; "e8e8e8e8" ]

let exact_fuzz =
  Test_util.qcheck ~count:60 "exact synthesis matches random tables"
    QCheck2.Gen.(pair (int_range 1 3) (int_range 0 0xFF))
    (fun (k, bits) ->
      let t = Synth.Tt.make k (Int64.of_int bits) in
      match Synth.Exact.synthesize ~max_gates:8 t with
      | Some s ->
        Synth.Tt.equal t (solution_tt s)
        && s.Synth.Exact.gates = Aig.count_cone_ands s.Synth.Exact.aig [ Aig.output s.Synth.Exact.aig 0 ]
      | None ->
        (* Every ≤ 3-input function fits in 8 AIG nodes (parity-3, the
           worst case, takes 6); None here would be a real bug. *)
        false)

(* One random cube from fuzz literals: clamp to the variable range and
   keep the first phase of a repeated variable ([Cube.of_literals] rejects
   contradictory literals). *)
let cube_of k lits =
  let lits =
    List.sort_uniq compare (List.filter (fun (v, _) -> v < k) lits)
    |> List.fold_left (fun acc (v, ph) -> if List.mem_assoc v acc then acc else (v, ph) :: acc) []
  in
  match lits with [] -> None | _ -> Some (Twolevel.Cube.of_literals k lits)

let sop_fuzz =
  (* Random small SOPs: the exact engine against the semantic oracle. *)
  let gen =
    QCheck2.Gen.(
      pair (int_range 2 4)
        (list_size (int_range 1 5) (list_size (int_range 1 3) (pair (int_range 0 3) bool))))
  in
  Test_util.qcheck ~count:25 "exact synthesis matches random SOPs" gen
    (fun (k, cube_lits) ->
      let cubes = List.filter_map (cube_of k) cube_lits in
      match cubes with
      | [] -> true
      | _ -> (
        let sop = Twolevel.Sop.create k cubes in
        let t = Synth.Tt.of_sop sop in
        match Synth.Exact.synthesize ~max_gates:10 ~budget:5_000 t with
        | None -> Synth.Tt.support t <> [] (* only big functions may bail *)
        | Some s ->
          let st = solution_tt s in
          Synth.Tt.equal t st
          && List.for_all
               (fun row ->
                 let bits = Array.init k (fun i -> (row lsr i) land 1 = 1) in
                 Synth.Tt.eval st row = Twolevel.Sop.eval sop bits)
               (List.init (1 lsl k) Fun.id)))

(* {2 Memo table} *)

let test_table_memoises () =
  let t = Synth.Tt.of_fun 4 (fun b -> (b.(0) && b.(1)) <> (b.(2) && b.(3))) in
  let r1 = Synth.Table.lookup t in
  let size1 = Synth.Table.size () in
  let r2 = Synth.Table.lookup t in
  Alcotest.(check bool) "lookup finds a circuit" true (r1 <> None);
  Alcotest.(check bool) "second lookup hits" true (r2 <> None);
  Alcotest.(check int) "no duplicate entry" size1 (Synth.Table.size ());
  match (r1, r2) with
  | Some a, Some b ->
    Alcotest.(check int) "hits share the entry" a.Synth.Exact.gates b.Synth.Exact.gates
  | _ -> ()

(* {2 DAG-aware rewriting} *)

let output_tables m =
  Array.to_list (Array.map (fun o -> Synth.Tt.of_aig m o) (Aig.outputs m))

let test_rewrite_shrinks_redundant () =
  (* (a ∧ b) ∨ (a ∧ c) takes 3 ANDs as written; the optimal a ∧ (b ∨ c)
     takes 2.  A 4-cut sees the whole cone, so rewriting must find it. *)
  let m = Aig.create () in
  let a = Aig.add_input m and b = Aig.add_input m and c = Aig.add_input m in
  ignore (Aig.add_output m (Aig.or_ m (Aig.and_ m a b) (Aig.and_ m a c)));
  let m' = Synth.Rewrite.run m in
  Alcotest.(check int) "gates shrink" 2 (Aig.count_cone_ands m' [ Aig.output m' 0 ]);
  Alcotest.(check (list tt)) "function preserved" (output_tables m) (output_tables m')

let test_rewrite_preserves_shared_logic () =
  (* Two outputs sharing a subcircuit: rewriting one cone must not break
     or duplicate the other (the MFFC gain counter must see the sharing). *)
  let m = Aig.create () in
  let a = Aig.add_input m and b = Aig.add_input m and c = Aig.add_input m in
  let shared = Aig.and_ m a b in
  ignore (Aig.add_output m (Aig.or_ m shared (Aig.and_ m a c)));
  ignore (Aig.add_output m (Aig.xor_ m shared c));
  let m' = Synth.Rewrite.run m in
  Alcotest.(check (list tt)) "functions preserved" (output_tables m) (output_tables m');
  Alcotest.(check bool) "no growth" true
    (Aig.count_cone_ands m' (Array.to_list (Aig.outputs m'))
    <= Aig.count_cone_ands m (Array.to_list (Aig.outputs m)))

let test_rewrite_expired_deadline () =
  let m = Aig.create () in
  let a = Aig.add_input m and b = Aig.add_input m in
  ignore (Aig.add_output m (Aig.xor_ m a b));
  let d = Deadline.after 1e-6 in
  Unix.sleepf 0.01;
  let m' = Synth.Rewrite.run ~deadline:d m in
  Alcotest.(check (list tt)) "verbatim rebuild" (output_tables m) (output_tables m')

let rewrite_fuzz =
  (* Function preservation is the property; a tiny SAT budget keeps the
     cold memo-table fills cheap (an uncracked cut function just falls
     back to the verbatim rebuild, which is equally interesting here). *)
  Test_util.qcheck ~count:40 "rewriting preserves random DAG functions"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let nl = Gen.Circuits.random_dag ~seed ~inputs:5 ~gates:30 ~outputs:3 () in
      let m = (Netlist.Convert.to_aig nl).Netlist.Convert.mgr in
      let m' = Synth.Rewrite.run ~budget:300 m in
      Aig.num_inputs m' = Aig.num_inputs m
      && Aig.num_outputs m' = Aig.num_outputs m
      && output_tables m = output_tables m')

(* {2 Patch integration} *)

let redundant_patch () =
  (* a ∧ b computed twice and ORed: 5 ANDs where 1 suffices. *)
  let m = Aig.create () in
  let a = Aig.add_input m and b = Aig.add_input m in
  let f1 = Aig.and_ m a b in
  let f2 = Aig.not_ (Aig.or_ m (Aig.not_ a) (Aig.not_ b)) in
  ignore (Aig.add_output m (Aig.or_ m f1 f2));
  Eco.Patch.make ~target:"t" ~support:[ ("a", 1); ("b", 2) ] m

let test_improve_exact () =
  let p = redundant_patch () in
  let opts = { Eco.Patch.default_synth_opts with Eco.Patch.exact = true } in
  let p' = Eco.Patch.improve opts p in
  Alcotest.(check int) "optimal size" 1 p'.Eco.Patch.gates;
  Alcotest.(check bool) "depth never grows" true (p'.Eco.Patch.depth <= p.Eco.Patch.depth);
  Alcotest.(check (list (pair string int))) "support intact" p.Eco.Patch.support
    p'.Eco.Patch.support;
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool)
        (Printf.sprintf "same function at %b,%b" x y)
        (Eco.Patch.eval p [| x; y |])
        (Eco.Patch.eval p' [| x; y |]))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_improve_off_is_identity () =
  let p = redundant_patch () in
  let p' = Eco.Patch.improve Eco.Patch.default_synth_opts p in
  Alcotest.(check bool) "no flags, no change" true (p == p')

let improve_fuzz =
  (* Random SOP → factored patch → improve with both passes: the result
     must stay semantically equal to the SOP and Pareto-dominate or equal
     the factored circuit on (gates, depth).  This is the commit rule the
     engine relies on for the "gates never grow" CI gate. *)
  let gen =
    QCheck2.Gen.(
      pair (int_range 2 4)
        (list_size (int_range 1 6) (list_size (int_range 1 4) (pair (int_range 0 3) bool))))
  in
  Test_util.qcheck ~count:20 "improve keeps SOP semantics and Pareto-improves" gen
    (fun (k, cube_lits) ->
      let cubes = List.filter_map (cube_of k) cube_lits in
      match cubes with
      | [] -> true
      | _ ->
        let sop = Twolevel.Sop.scc_minimize (Twolevel.Sop.create k cubes) in
        let expr = Twolevel.Factor.factor sop in
        let support = List.init k (fun i -> (Printf.sprintf "d%d" i, 1)) in
        let p = Eco.Patch.of_expr ~sop ~target:"t" ~support expr in
        let opts =
          { Eco.Patch.default_synth_opts with Eco.Patch.exact = true; rewrite = true }
        in
        let p' = Eco.Patch.improve opts p in
        p'.Eco.Patch.gates <= p.Eco.Patch.gates
        && p'.Eco.Patch.depth <= p.Eco.Patch.depth
        && List.for_all
             (fun row ->
               let bits = Array.init k (fun i -> (row lsr i) land 1 = 1) in
               Eco.Patch.eval p' bits = Twolevel.Sop.eval sop bits)
             (List.init (1 lsl k) Fun.id))

let test_import_into_order () =
  (* Regression for the quadratic import path: a wide-support patch must
     import with its inputs mapped in declaration order. *)
  let k = 12 in
  let m = Aig.create () in
  let ins = Array.init k (fun _ -> Aig.add_input m) in
  (* Alternating-phase AND chain: sensitive to any input permutation. *)
  let body =
    Array.to_list (Array.mapi (fun i l -> if i land 1 = 0 then l else Aig.not_ l) ins)
  in
  ignore (Aig.add_output m (Aig.and_list m body));
  let support = List.init k (fun i -> (Printf.sprintf "s%d" i, 1)) in
  let p = Eco.Patch.make ~target:"t" ~support m in
  let host = Aig.create () in
  let host_ins = Array.to_list (Array.init k (fun _ -> Aig.add_input host)) in
  let lit = Eco.Patch.import_into p host ~support_lits:host_ins in
  let bits = Array.init k (fun i -> i land 1 = 0) in
  Alcotest.(check bool) "on-set row" true (Aig.eval host bits lit);
  bits.(3) <- true;
  Alcotest.(check bool) "off-set row" false (Aig.eval host bits lit)

let test_sweep_expired_deadline () =
  let p = redundant_patch () in
  let before =
    match List.assoc_opt "eco.sweep.runs" (Telemetry.snapshot ()) with
    | Some v -> v
    | None -> 0
  in
  (* [Deadline.after] maps non-positive spans to [never], so an expired
     deadline has to actually expire. *)
  let d = Deadline.after 1e-6 in
  Unix.sleepf 0.01;
  let p' = Eco.Patch.sweep ~deadline:d p in
  let after =
    match List.assoc_opt "eco.sweep.runs" (Telemetry.snapshot ()) with
    | Some v -> v
    | None -> 0
  in
  Alcotest.(check bool) "expired deadline skips the sweep" true (p == p');
  Alcotest.(check int) "no sweep booked" before after

let () =
  Alcotest.run "synth"
    [
      ( "tt",
        [
          Alcotest.test_case "basics" `Quick test_tt_basics;
          Alcotest.test_case "of_aig/of_sop agree" `Quick test_tt_of_aig_of_sop;
        ] );
      ( "exact",
        [
          Alcotest.test_case "known optima" `Quick test_exact_known_sizes;
          Alcotest.test_case "depth bound" `Quick test_exact_depth_bound;
          Alcotest.test_case "budget exhaustion" `Quick test_exact_budget_exhaustion;
          Alcotest.test_case "vs factoring (mockturtle)" `Slow test_exact_vs_factoring_mockturtle;
          exact_fuzz;
          sop_fuzz;
        ] );
      ("table", [ Alcotest.test_case "memoises" `Quick test_table_memoises ]);
      ( "rewrite",
        [
          Alcotest.test_case "shrinks redundancy" `Quick test_rewrite_shrinks_redundant;
          Alcotest.test_case "shared logic" `Quick test_rewrite_preserves_shared_logic;
          Alcotest.test_case "expired deadline" `Quick test_rewrite_expired_deadline;
          rewrite_fuzz;
        ] );
      ( "patch",
        [
          Alcotest.test_case "improve: exact" `Quick test_improve_exact;
          Alcotest.test_case "improve: flags off" `Quick test_improve_off_is_identity;
          improve_fuzz;
          Alcotest.test_case "import_into order" `Quick test_import_into_order;
          Alcotest.test_case "sweep: expired deadline" `Quick test_sweep_expired_deadline;
        ] );
    ]
