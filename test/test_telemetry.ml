(* The telemetry layer: counter/timer/event mechanics, JSONL round-trip,
   and the determinism contract the perf work relies on — identical
   [Engine.solve] runs on a suite unit must produce byte-identical counter
   deltas. *)

let v_int i = Telemetry.Value.Int i
let v_str s = Telemetry.Value.Str s

let test_counters () =
  let c = Telemetry.Counter.make "test.counter_a" in
  let v0 = Telemetry.Counter.value c in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (Telemetry.Counter.value c);
  Alcotest.(check int) "by-name lookup" (v0 + 42) (Telemetry.counter_value "test.counter_a");
  Alcotest.(check string) "name" "test.counter_a" (Telemetry.Counter.name c);
  let c' = Telemetry.Counter.make "test.counter_a" in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "make is idempotent" (v0 + 43) (Telemetry.Counter.value c)

let test_snapshot_diff () =
  let before = Telemetry.snapshot () in
  Telemetry.bump "test.diff_x" 3;
  Telemetry.bump "test.diff_y" 2;
  Telemetry.bump "test.diff_y" (-2);
  let d = Telemetry.diff before (Telemetry.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "only nonzero deltas, sorted" [ ("test.diff_x", 3) ]
    (List.filter (fun (n, _) -> String.length n > 5 && String.sub n 0 5 = "test.") d)

let test_phases () =
  Alcotest.(check string) "no phase outside" "" (Telemetry.current_phase ());
  let r =
    Telemetry.with_phase "outer" (fun () ->
        Alcotest.(check string) "inner path" "outer" (Telemetry.current_phase ());
        Telemetry.with_phase "inner" (fun () ->
            Alcotest.(check string) "nested path" "outer/inner" (Telemetry.current_phase ());
            17))
  in
  Alcotest.(check int) "value threaded" 17 r;
  (* Exception safety: the stack unwinds. *)
  (try Telemetry.with_phase "outer" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check string) "stack unwound" "" (Telemetry.current_phase ());
  let stat =
    List.find (fun s -> s.Telemetry.path = "outer/inner") (Telemetry.phases ())
  in
  Alcotest.(check bool) "inner called once" true (stat.Telemetry.calls >= 1);
  Alcotest.(check bool) "seconds nonnegative" true (stat.Telemetry.seconds >= 0.0)

let test_ring_buffer () =
  Telemetry.set_ring_capacity 8;
  for i = 0 to 19 do
    Telemetry.event "test.ring" ~fields:[ ("i", v_int i) ]
  done;
  let es = Telemetry.events () in
  Alcotest.(check int) "capacity bounds the ring" 8 (List.length es);
  Alcotest.(check (list int)) "oldest dropped, order kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map
       (fun (e : Telemetry.event) ->
         match e.Telemetry.fields with [ ("i", Telemetry.Value.Int i) ] -> i | _ -> -1)
       es);
  let seqs = List.map (fun (e : Telemetry.event) -> e.Telemetry.seq) es in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 7) seqs) (List.tl seqs));
  Telemetry.set_ring_capacity 4096

let roundtrip e =
  let line = Telemetry.Json.of_event e in
  let e' = Telemetry.Json.parse_event line in
  Alcotest.(check int) "seq" e.Telemetry.seq e'.Telemetry.seq;
  Alcotest.(check string) "phase" e.Telemetry.phase e'.Telemetry.phase;
  Alcotest.(check string) "name" e.Telemetry.name e'.Telemetry.name;
  Alcotest.(check int) "field count" (List.length e.Telemetry.fields)
    (List.length e'.Telemetry.fields);
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "field key" k k';
      Alcotest.(check bool)
        (Printf.sprintf "field %s value" k)
        true
        (Telemetry.Value.equal v v'))
    e.Telemetry.fields e'.Telemetry.fields

let test_jsonl_roundtrip () =
  Telemetry.set_ring_capacity 64;
  let collected = ref [] in
  Telemetry.set_sink (fun line -> collected := line :: !collected);
  Telemetry.with_phase "rt" (fun () ->
      Telemetry.event "plain" ;
      Telemetry.event "ints" ~fields:[ ("a", v_int 0); ("b", v_int (-12345)) ];
      Telemetry.event "floats"
        ~fields:
          [
            ("x", Telemetry.Value.Float 1.5);
            ("y", Telemetry.Value.Float (-0.25));
            ("z", Telemetry.Value.Float 3.0);
            ("tiny", Telemetry.Value.Float 1e-9);
          ];
      Telemetry.event "bools" ~fields:[ ("t", Telemetry.Value.Bool true); ("f", Telemetry.Value.Bool false) ];
      Telemetry.event "strings"
        ~fields:
          [
            ("quoted", v_str "say \"hi\"");
            ("escaped", v_str "tab\there\nnewline\\slash");
            ("control", v_str "\001\002");
            ("empty", v_str "");
          ]);
  Telemetry.close_sink ();
  let events = Telemetry.events () in
  let tail n l = List.filteri (fun i _ -> i >= List.length l - n) l in
  let last5 = tail 5 events in
  Alcotest.(check int) "five events emitted" 5 (List.length last5);
  List.iter roundtrip last5;
  (* The sink saw the same JSON the encoder produces. *)
  let sunk = List.rev !collected in
  Alcotest.(check int) "sink got every event" 5 (List.length sunk);
  List.iter2
    (fun e line -> Alcotest.(check string) "sink line" (Telemetry.Json.of_event e) line)
    last5 sunk;
  List.iter
    (fun (e : Telemetry.event) ->
      Alcotest.(check string) "phase recorded" "rt" e.Telemetry.phase)
    last5

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Telemetry.Json.parse_event s with
      | _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | exception Failure _ -> ())
    [ ""; "{"; "not json"; "{\"seq\":}"; "{\"phase\":\"x\"}"; "{\"seq\":1} trailing" ]

(* The acceptance-criterion test: two identical Engine.solve calls on a
   Gen.Suite unit yield byte-identical counter deltas (SAT calls,
   conflicts, decisions, propagations, cubes, ... every counter in the
   registry).  Wall-clock phase timers are exempt by design. *)
let engine_counters config unit_name =
  let spec = Gen.Suite.find unit_name in
  let inst = Gen.Suite.instantiate spec in
  let before = Telemetry.snapshot () in
  let outcome = Eco.Engine.solve ~config inst in
  let d = Telemetry.diff before (Telemetry.snapshot ()) in
  (outcome, d)

let test_engine_determinism () =
  List.iter
    (fun (unit_name, method_) ->
      let config = Eco.Engine.config_of_method method_ in
      let o1, d1 = engine_counters config unit_name in
      let o2, d2 = engine_counters config unit_name in
      let ctx = "unit " ^ unit_name in
      Alcotest.(check bool) (ctx ^ ": solved") true (o1.Eco.Engine.status = Eco.Engine.Solved);
      Alcotest.(check bool)
        (ctx ^ ": same status")
        true
        (o1.Eco.Engine.status = o2.Eco.Engine.status);
      Alcotest.(check int) (ctx ^ ": same engine sat_calls") o1.Eco.Engine.sat_calls
        o2.Eco.Engine.sat_calls;
      Alcotest.(check (list (pair string int))) (ctx ^ ": identical counter deltas") d1 d2;
      (* The deltas actually cover the solver, or the assertion is hollow. *)
      Alcotest.(check bool)
        (ctx ^ ": sat.solves counted")
        true
        (List.mem_assoc "sat.solves" d1);
      Alcotest.(check bool)
        (ctx ^ ": eco.runs counted")
        true
        (List.mem_assoc "eco.runs" d1))
    [ ("unit1", Eco.Engine.Min_assume); ("unit2", Eco.Engine.Baseline) ]

(* Parallel determinism: N domains hammering the shared facilities must
   leave totals identical to the same work done sequentially, a non-corrupt
   ring, and valid JSONL out of the sink. *)

let hammer_counters spin =
  let c = Telemetry.Counter.make "test.par.handle" in
  for i = 1 to spin do
    Telemetry.Counter.incr c;
    Telemetry.Counter.add c 2;
    Telemetry.bump "test.par.byname" i
  done

let test_parallel_counter_totals () =
  let spin = 1000 and domains = 4 in
  let expected_handle = domains * spin * 3 in
  let expected_byname = domains * (spin * (spin + 1) / 2) in
  let seq_before = Telemetry.snapshot () in
  List.iter (fun _ -> hammer_counters spin) (List.init domains Fun.id);
  let seq_delta = Telemetry.diff seq_before (Telemetry.snapshot ()) in
  let par_before = Telemetry.snapshot () in
  let rs = Pool.map ~jobs:domains (fun _ -> hammer_counters spin) (List.init domains Fun.id) in
  List.iter (function Ok () -> () | Error e -> Alcotest.fail (Printexc.to_string e)) rs;
  let par_delta = Telemetry.diff par_before (Telemetry.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "parallel totals equal sequential totals" seq_delta par_delta;
  Alcotest.(check int) "handle total" expected_handle
    (List.assoc "test.par.handle" par_delta);
  Alcotest.(check int) "by-name total" expected_byname
    (List.assoc "test.par.byname" par_delta)

let test_local_snapshot_isolation () =
  (* Each job adds a distinct amount; its local diff must see exactly its
     own contribution even with three other domains adding concurrently. *)
  let rs =
    Pool.map ~jobs:4
      (fun k ->
        let before = Telemetry.local_snapshot () in
        for _ = 1 to 50 do
          Telemetry.bump "test.par.local" k
        done;
        (k, Telemetry.diff before (Telemetry.local_snapshot ())))
      [ 1; 3; 5; 7 ]
  in
  List.iter
    (function
      | Ok (k, delta) ->
        Alcotest.(check int)
          (Printf.sprintf "job %d sees only its own adds" k)
          (50 * k)
          (List.assoc "test.par.local" delta)
      | Error e -> Alcotest.fail (Printexc.to_string e))
    rs

let test_parallel_phases () =
  let before_calls path =
    match List.find_opt (fun s -> s.Telemetry.path = path) (Telemetry.phases ()) with
    | Some s -> s.Telemetry.calls
    | None -> 0
  in
  let outer0 = before_calls "par_outer" and inner0 = before_calls "par_outer/par_inner" in
  let rs =
    Pool.map ~jobs:4
      (fun _ ->
        for _ = 1 to 25 do
          Telemetry.with_phase "par_outer" (fun () ->
              Telemetry.with_phase "par_inner" (fun () -> ()))
        done;
        (* The phase stack is domain-local: it must unwind cleanly here. *)
        Telemetry.current_phase ())
      (List.init 4 Fun.id)
  in
  List.iter
    (function
      | Ok phase -> Alcotest.(check string) "worker stack unwound" "" phase
      | Error e -> Alcotest.fail (Printexc.to_string e))
    rs;
  Alcotest.(check int) "outer calls merged across domains" (outer0 + 100)
    (before_calls "par_outer");
  Alcotest.(check int) "inner calls merged across domains" (inner0 + 100)
    (before_calls "par_outer/par_inner")

let test_parallel_events_ring_and_sink () =
  Telemetry.set_ring_capacity 1024;
  let sunk = ref [] in
  Telemetry.set_sink (fun line -> sunk := line :: !sunk);
  let domains = 4 and per_domain = 50 in
  (* Barrier: make every worker pick up exactly one job, so the events
     genuinely come from [domains] distinct domains. *)
  let started = Atomic.make 0 in
  let rs =
    Pool.map ~jobs:domains
      (fun _ ->
        Atomic.incr started;
        while Atomic.get started < domains do
          Domain.cpu_relax ()
        done;
        let d = Telemetry.domain_id () in
        for i = 0 to per_domain - 1 do
          Telemetry.event "test.par.event"
            ~fields:[ ("d", v_int d); ("i", v_int i) ]
        done)
      (List.init domains Fun.id)
  in
  Telemetry.close_sink ();
  List.iter (function Ok () -> () | Error e -> Alcotest.fail (Printexc.to_string e)) rs;
  let ours =
    List.filter
      (fun (e : Telemetry.event) -> e.Telemetry.name = "test.par.event")
      (Telemetry.events ())
  in
  Alcotest.(check int) "ring kept every event" (domains * per_domain) (List.length ours);
  (* Per-domain seqs are strictly increasing and the i field follows the
     emission order within its domain. *)
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun (e : Telemetry.event) ->
      let d = e.Telemetry.domain in
      let prev = try Hashtbl.find by_domain d with Not_found -> [] in
      Hashtbl.replace by_domain d (e :: prev))
    ours;
  Alcotest.(check int) "events from every worker" domains (Hashtbl.length by_domain);
  Hashtbl.iter
    (fun d es ->
      let es = List.rev es in
      Alcotest.(check int) (Printf.sprintf "domain %d event count" d) per_domain
        (List.length es);
      ignore
        (List.fold_left
           (fun last (e : Telemetry.event) ->
             Alcotest.(check bool) "seq strictly increasing per domain" true
               (e.Telemetry.seq > last);
             e.Telemetry.seq)
           (-1) es);
      List.iteri
        (fun i (e : Telemetry.event) ->
          match List.assoc "i" e.Telemetry.fields with
          | Telemetry.Value.Int j -> Alcotest.(check int) "in-domain order kept" i j
          | _ -> Alcotest.fail "missing i field")
        es)
    by_domain;
  (* Every sunk line is valid JSONL and parses back to an event. *)
  let lines =
    List.filter
      (fun l ->
        let e = Telemetry.Json.parse_event l in
        e.Telemetry.name = "test.par.event")
      !sunk
  in
  Alcotest.(check int) "sink got every event, all parseable" (domains * per_domain)
    (List.length lines);
  Telemetry.set_ring_capacity 4096

let test_parallel_engine_counters () =
  (* The acceptance-criterion shape on a small scale: solving a batch of
     units on 4 domains leaves exactly the counter totals of the
     sequential solve of the same units. *)
  let units = [ "unit1"; "unit2"; "unit3" ] in
  let solve u =
    let config = Eco.Engine.config_of_method Eco.Engine.Min_assume in
    ignore (Eco.Engine.solve ~config (Gen.Suite.instantiate (Gen.Suite.find u)))
  in
  let before = Telemetry.snapshot () in
  List.iter solve units;
  let seq_delta = Telemetry.diff before (Telemetry.snapshot ()) in
  let before = Telemetry.snapshot () in
  let rs = Pool.map ~jobs:4 solve units in
  List.iter (function Ok () -> () | Error e -> Alcotest.fail (Printexc.to_string e)) rs;
  let par_delta = Telemetry.diff before (Telemetry.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "parallel solve totals equal sequential" seq_delta par_delta

let test_solver_stats_accessors () =
  let s = Sat.Solver.create () in
  let n = 8 in
  let v = Sat.Solver.new_vars s n in
  (* Pigeonhole-ish contradiction to force some learning. *)
  for i = 0 to n - 2 do
    Sat.Solver.add_clause s [ Sat.Lit.make_neg (v + i); Sat.Lit.make (v + i + 1) ]
  done;
  Sat.Solver.add_clause s [ Sat.Lit.make v ];
  Sat.Solver.add_clause s [ Sat.Lit.make_neg (v + n - 1) ];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "restarts nonnegative" true (Sat.Solver.n_restarts s >= 0);
  Alcotest.(check bool) "learned nonnegative" true (Sat.Solver.n_learned s >= 0);
  Alcotest.(check bool) "deleted nonnegative" true (Sat.Solver.n_deleted s >= 0);
  Alcotest.(check bool) "avg lbd nonnegative" true (Sat.Solver.avg_lbd s >= 0.0);
  Alcotest.(check bool)
    "learned lits bounds learned" true
    (Sat.Solver.n_learned_lits s >= Sat.Solver.n_learned s)

let () =
  Alcotest.run "telemetry"
    [
      ( "core",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "phase timers" `Quick test_phases;
          Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine counters repeat exactly" `Quick test_engine_determinism;
          Alcotest.test_case "solver stats accessors" `Quick test_solver_stats_accessors;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "counter totals match sequential" `Quick
            test_parallel_counter_totals;
          Alcotest.test_case "local snapshot isolation" `Quick
            test_local_snapshot_isolation;
          Alcotest.test_case "phase merge across domains" `Quick test_parallel_phases;
          Alcotest.test_case "event ring and sink under domains" `Quick
            test_parallel_events_ring_and_sink;
          Alcotest.test_case "engine solve totals match sequential" `Quick
            test_parallel_engine_counters;
        ] );
    ]
