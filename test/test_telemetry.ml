(* The telemetry layer: counter/timer/event mechanics, JSONL round-trip,
   and the determinism contract the perf work relies on — identical
   [Engine.solve] runs on a suite unit must produce byte-identical counter
   deltas. *)

let v_int i = Telemetry.Value.Int i
let v_str s = Telemetry.Value.Str s

let test_counters () =
  let c = Telemetry.Counter.make "test.counter_a" in
  let v0 = Telemetry.Counter.value c in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (Telemetry.Counter.value c);
  Alcotest.(check int) "by-name lookup" (v0 + 42) (Telemetry.counter_value "test.counter_a");
  Alcotest.(check string) "name" "test.counter_a" (Telemetry.Counter.name c);
  let c' = Telemetry.Counter.make "test.counter_a" in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "make is idempotent" (v0 + 43) (Telemetry.Counter.value c)

let test_snapshot_diff () =
  let before = Telemetry.snapshot () in
  Telemetry.bump "test.diff_x" 3;
  Telemetry.bump "test.diff_y" 2;
  Telemetry.bump "test.diff_y" (-2);
  let d = Telemetry.diff before (Telemetry.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "only nonzero deltas, sorted" [ ("test.diff_x", 3) ]
    (List.filter (fun (n, _) -> String.length n > 5 && String.sub n 0 5 = "test.") d)

let test_phases () =
  Alcotest.(check string) "no phase outside" "" (Telemetry.current_phase ());
  let r =
    Telemetry.with_phase "outer" (fun () ->
        Alcotest.(check string) "inner path" "outer" (Telemetry.current_phase ());
        Telemetry.with_phase "inner" (fun () ->
            Alcotest.(check string) "nested path" "outer/inner" (Telemetry.current_phase ());
            17))
  in
  Alcotest.(check int) "value threaded" 17 r;
  (* Exception safety: the stack unwinds. *)
  (try Telemetry.with_phase "outer" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check string) "stack unwound" "" (Telemetry.current_phase ());
  let stat =
    List.find (fun s -> s.Telemetry.path = "outer/inner") (Telemetry.phases ())
  in
  Alcotest.(check bool) "inner called once" true (stat.Telemetry.calls >= 1);
  Alcotest.(check bool) "seconds nonnegative" true (stat.Telemetry.seconds >= 0.0)

let test_ring_buffer () =
  Telemetry.set_ring_capacity 8;
  for i = 0 to 19 do
    Telemetry.event "test.ring" ~fields:[ ("i", v_int i) ]
  done;
  let es = Telemetry.events () in
  Alcotest.(check int) "capacity bounds the ring" 8 (List.length es);
  Alcotest.(check (list int)) "oldest dropped, order kept"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map
       (fun (e : Telemetry.event) ->
         match e.Telemetry.fields with [ ("i", Telemetry.Value.Int i) ] -> i | _ -> -1)
       es);
  let seqs = List.map (fun (e : Telemetry.event) -> e.Telemetry.seq) es in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 7) seqs) (List.tl seqs));
  Telemetry.set_ring_capacity 4096

let roundtrip e =
  let line = Telemetry.Json.of_event e in
  let e' = Telemetry.Json.parse_event line in
  Alcotest.(check int) "seq" e.Telemetry.seq e'.Telemetry.seq;
  Alcotest.(check string) "phase" e.Telemetry.phase e'.Telemetry.phase;
  Alcotest.(check string) "name" e.Telemetry.name e'.Telemetry.name;
  Alcotest.(check int) "field count" (List.length e.Telemetry.fields)
    (List.length e'.Telemetry.fields);
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "field key" k k';
      Alcotest.(check bool)
        (Printf.sprintf "field %s value" k)
        true
        (Telemetry.Value.equal v v'))
    e.Telemetry.fields e'.Telemetry.fields

let test_jsonl_roundtrip () =
  Telemetry.set_ring_capacity 64;
  let collected = ref [] in
  Telemetry.set_sink (fun line -> collected := line :: !collected);
  Telemetry.with_phase "rt" (fun () ->
      Telemetry.event "plain" ;
      Telemetry.event "ints" ~fields:[ ("a", v_int 0); ("b", v_int (-12345)) ];
      Telemetry.event "floats"
        ~fields:
          [
            ("x", Telemetry.Value.Float 1.5);
            ("y", Telemetry.Value.Float (-0.25));
            ("z", Telemetry.Value.Float 3.0);
            ("tiny", Telemetry.Value.Float 1e-9);
          ];
      Telemetry.event "bools" ~fields:[ ("t", Telemetry.Value.Bool true); ("f", Telemetry.Value.Bool false) ];
      Telemetry.event "strings"
        ~fields:
          [
            ("quoted", v_str "say \"hi\"");
            ("escaped", v_str "tab\there\nnewline\\slash");
            ("control", v_str "\001\002");
            ("empty", v_str "");
          ]);
  Telemetry.close_sink ();
  let events = Telemetry.events () in
  let tail n l = List.filteri (fun i _ -> i >= List.length l - n) l in
  let last5 = tail 5 events in
  Alcotest.(check int) "five events emitted" 5 (List.length last5);
  List.iter roundtrip last5;
  (* The sink saw the same JSON the encoder produces. *)
  let sunk = List.rev !collected in
  Alcotest.(check int) "sink got every event" 5 (List.length sunk);
  List.iter2
    (fun e line -> Alcotest.(check string) "sink line" (Telemetry.Json.of_event e) line)
    last5 sunk;
  List.iter
    (fun (e : Telemetry.event) ->
      Alcotest.(check string) "phase recorded" "rt" e.Telemetry.phase)
    last5

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Telemetry.Json.parse_event s with
      | _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | exception Failure _ -> ())
    [ ""; "{"; "not json"; "{\"seq\":}"; "{\"phase\":\"x\"}"; "{\"seq\":1} trailing" ]

(* The acceptance-criterion test: two identical Engine.solve calls on a
   Gen.Suite unit yield byte-identical counter deltas (SAT calls,
   conflicts, decisions, propagations, cubes, ... every counter in the
   registry).  Wall-clock phase timers are exempt by design. *)
let engine_counters config unit_name =
  let spec = Gen.Suite.find unit_name in
  let inst = Gen.Suite.instantiate spec in
  let before = Telemetry.snapshot () in
  let outcome = Eco.Engine.solve ~config inst in
  let d = Telemetry.diff before (Telemetry.snapshot ()) in
  (outcome, d)

let test_engine_determinism () =
  List.iter
    (fun (unit_name, method_) ->
      let config = Eco.Engine.config_of_method method_ in
      let o1, d1 = engine_counters config unit_name in
      let o2, d2 = engine_counters config unit_name in
      let ctx = "unit " ^ unit_name in
      Alcotest.(check bool) (ctx ^ ": solved") true (o1.Eco.Engine.status = Eco.Engine.Solved);
      Alcotest.(check bool)
        (ctx ^ ": same status")
        true
        (o1.Eco.Engine.status = o2.Eco.Engine.status);
      Alcotest.(check int) (ctx ^ ": same engine sat_calls") o1.Eco.Engine.sat_calls
        o2.Eco.Engine.sat_calls;
      Alcotest.(check (list (pair string int))) (ctx ^ ": identical counter deltas") d1 d2;
      (* The deltas actually cover the solver, or the assertion is hollow. *)
      Alcotest.(check bool)
        (ctx ^ ": sat.solves counted")
        true
        (List.mem_assoc "sat.solves" d1);
      Alcotest.(check bool)
        (ctx ^ ": eco.runs counted")
        true
        (List.mem_assoc "eco.runs" d1))
    [ ("unit1", Eco.Engine.Min_assume); ("unit2", Eco.Engine.Baseline) ]

let test_solver_stats_accessors () =
  let s = Sat.Solver.create () in
  let n = 8 in
  let v = Sat.Solver.new_vars s n in
  (* Pigeonhole-ish contradiction to force some learning. *)
  for i = 0 to n - 2 do
    Sat.Solver.add_clause s [ Sat.Lit.make_neg (v + i); Sat.Lit.make (v + i + 1) ]
  done;
  Sat.Solver.add_clause s [ Sat.Lit.make v ];
  Sat.Solver.add_clause s [ Sat.Lit.make_neg (v + n - 1) ];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "restarts nonnegative" true (Sat.Solver.n_restarts s >= 0);
  Alcotest.(check bool) "learned nonnegative" true (Sat.Solver.n_learned s >= 0);
  Alcotest.(check bool) "deleted nonnegative" true (Sat.Solver.n_deleted s >= 0);
  Alcotest.(check bool) "avg lbd nonnegative" true (Sat.Solver.avg_lbd s >= 0.0);
  Alcotest.(check bool)
    "learned lits bounds learned" true
    (Sat.Solver.n_learned_lits s >= Sat.Solver.n_learned s)

let () =
  Alcotest.run "telemetry"
    [
      ( "core",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
          Alcotest.test_case "phase timers" `Quick test_phases;
          Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine counters repeat exactly" `Quick test_engine_determinism;
          Alcotest.test_case "solver stats accessors" `Quick test_solver_stats_accessors;
        ] );
    ]
